package summation

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestFigure6Capacity(t *testing.T) {
	// Figure 6's machine: t=28, P=8, L=5, g=4, o=2. The lazy machine is
	// (L+1)=6, o=2, g=4, whose 8 smallest universal labels are
	// 0,10,14,18,20,22,24,24; n(28) = 3 + sum(26 - d) = 79.
	m := logp.MustNew(8, 5, 2, 4)
	n, tr := Capacity(m, 28)
	if n != 79 {
		t.Fatalf("n(28) = %d, want 79", n)
	}
	if tr.P() != 8 {
		t.Fatalf("summation tree uses %d processors, want 8", tr.P())
	}
	if got := tr.MaxLabel(); got != 24 {
		t.Fatalf("deepest node at %d, want 24", got)
	}
}

func TestFigure6PlanAndSchedule(t *testing.T) {
	m := logp.MustNew(8, 5, 2, 4)
	pl, err := Build(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	if pl.N != 79 {
		t.Fatalf("plan capacity %d, want 79", pl.N)
	}
	s := pl.Schedule()
	if vs := schedule.Validate(s); len(vs) != 0 {
		t.Fatalf("schedule violations: %v", vs[0])
	}
	// The root's last fold completes exactly at T.
	rootOps := pl.Ops[0]
	last := rootOps[len(rootOps)-1]
	var end logp.Time
	if last.Kind == OpRecvFold {
		end = last.At + m.O + 1
	} else {
		end = last.At + 1
	}
	if end != 28 {
		t.Fatalf("root finishes at %d, want 28", end)
	}
}

func TestExecuteIntSum(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(8, 5, 2, 4),
		logp.Postal(16, 3),
		logp.MustNew(4, 2, 0, 1),
		logp.MustNew(32, 10, 1, 3),
	}
	for _, m := range machines {
		for _, tt := range []logp.Time{0, 1, 5, 13, 28, 40} {
			pl, err := Build(m, tt)
			if err != nil {
				t.Fatalf("%v t=%d: %v", m, tt, err)
			}
			ops := make([]int, pl.N)
			want := 0
			for i := range ops {
				ops[i] = 7*i + 3
				want += ops[i]
			}
			got, err := Execute(pl, ops, func(a, b int) int { return a + b })
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v t=%d: sum = %d, want %d", m, tt, got, want)
			}
		}
	}
}

func TestExecuteNonCommutative(t *testing.T) {
	// With string concatenation and the in-order operand numbering, the
	// result must be exactly operands[0] + operands[1] + ... — this pins
	// down the renumbering argument of the paper's footnote 2.
	m := logp.MustNew(8, 5, 2, 4)
	pl, err := Build(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]string, pl.N)
	var want strings.Builder
	for i := range ops {
		ops[i] = fmt.Sprintf("<%d>", i)
		want.WriteString(ops[i])
	}
	got, err := Execute(pl, ops, func(a, b string) string { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != want.String() {
		t.Fatalf("non-commutative result mismatch:\ngot  %s\nwant %s", got, want.String())
	}
}

func TestCapacityMonotone(t *testing.T) {
	m := logp.MustNew(16, 4, 1, 3)
	prev := int64(-1)
	for tt := logp.Time(0); tt <= 60; tt++ {
		n, _ := Capacity(m, tt)
		if n <= prev {
			t.Fatalf("capacity not strictly increasing at t=%d: %d then %d", tt, prev, n)
		}
		prev = n
	}
}

func TestTimeForInverse(t *testing.T) {
	machines := []logp.Machine{
		logp.Postal(8, 2),
		logp.MustNew(8, 5, 2, 4),
		logp.MustNew(64, 6, 1, 2),
	}
	for _, m := range machines {
		for _, n := range []int64{1, 2, 3, 10, 79, 200, 1000} {
			tt := TimeFor(m, n)
			c, _ := Capacity(m, tt)
			if c < n {
				t.Fatalf("%v n=%d: capacity(%d) = %d < n", m, n, tt, c)
			}
			if tt > 0 {
				c2, _ := Capacity(m, tt-1)
				if c2 >= n {
					t.Fatalf("%v n=%d: TimeFor=%d not minimal", m, n, tt)
				}
			}
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	m := logp.MustNew(1, 3, 1, 2)
	for tt := logp.Time(0); tt <= 10; tt++ {
		n, _ := Capacity(m, tt)
		if n != int64(tt)+1 {
			t.Fatalf("P=1 capacity(%d) = %d, want %d", tt, n, tt+1)
		}
	}
}

func TestSmallDeadlines(t *testing.T) {
	// For t <= o no reception completes; capacity is t+1 (local only).
	m := logp.MustNew(8, 5, 2, 4)
	for tt := logp.Time(0); tt <= 2; tt++ {
		n, _ := Capacity(m, tt)
		if n != int64(tt)+1 {
			t.Fatalf("capacity(%d) = %d, want %d", tt, n, tt+1)
		}
	}
}

func TestScheduleValidProperty(t *testing.T) {
	f := func(l, o, g, p, dt uint8) bool {
		oo := logp.Time(o % 3)
		m := logp.Machine{
			P: int(p%10) + 1,
			L: logp.Time(l%6) + 1,
			O: oo,
			G: oo + 1 + logp.Time(g%3),
		}
		tt := logp.Time(dt % 40)
		pl, err := Build(m, tt)
		if err != nil {
			return false
		}
		s := pl.Schedule()
		if len(schedule.Validate(s)) != 0 {
			return false
		}
		// Execute and check the sum.
		ops := make([]int, pl.N)
		want := 0
		for i := range ops {
			ops[i] = i + 1
			want += ops[i]
		}
		got, err := Execute(pl, ops, func(a, b int) int { return a + b })
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsSmallGap(t *testing.T) {
	m := logp.Machine{P: 4, L: 3, O: 2, G: 2} // g < o+1
	if err := Validate(m); err == nil {
		t.Fatal("g < o+1 accepted")
	}
	if _, err := Build(m, 10); err == nil {
		t.Fatal("Build accepted g < o+1")
	}
}

func TestExecuteWrongOperandCount(t *testing.T) {
	m := logp.Postal(4, 2)
	pl, err := Build(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(pl, []int{1, 2}, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("wrong operand count accepted")
	}
}

func TestOperandOrderIsPermutation(t *testing.T) {
	m := logp.MustNew(8, 5, 2, 4)
	pl, err := Build(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	order := pl.OperandOrder()
	seen := make(map[int64]bool)
	var total int64
	for ni, idxs := range order {
		if int64(len(idxs)) != pl.Locals[ni] {
			t.Fatalf("node %d folds %d operands, plan says %d", ni, len(idxs), pl.Locals[ni])
		}
		for _, ix := range idxs {
			if seen[ix] {
				t.Fatalf("operand %d assigned twice", ix)
			}
			seen[ix] = true
			total++
		}
	}
	if total != pl.N {
		t.Fatalf("order covers %d operands, want %d", total, pl.N)
	}
}

func TestLemma51Identity(t *testing.T) {
	// n = sum_i (S_i - (o+1) k_i) + P: check the per-processor accounting
	// against the built plan across machines and deadlines.
	machines := []logp.Machine{
		logp.Postal(16, 3),
		logp.MustNew(8, 5, 2, 4),
		logp.MustNew(12, 7, 1, 4),
	}
	for _, m := range machines {
		for _, tt := range []logp.Time{3, 9, 17, 28, 41} {
			pl, err := Build(m, tt)
			if err != nil {
				t.Fatal(err)
			}
			var n int64
			for ni := range pl.Tree.Nodes {
				k := int64(len(pl.Tree.Nodes[ni].Children))
				n += int64(pl.SendAt[ni]) - (int64(m.O)+1)*k + 1
			}
			if n != pl.N {
				t.Fatalf("%v t=%d: Lemma 5.1 accounting %d != plan %d", m, tt, n, pl.N)
			}
		}
	}
}

// exhaustiveCapacity computes the true maximum number of operands summable
// in t cycles by brute force over all lazy single-send summation trees:
// communication patterns are reversed broadcast trees on the (L+1, o, g)
// machine (Section 5's correspondence), so we enumerate every tree shape —
// not just the universal-greedy one — and maximize the total contribution
// (o+1) + sum(t - d_i - o). This independently verifies that the greedy
// universal tree in Capacity is optimal (Lemma 5.1's optimality argument).
func exhaustiveCapacity(m logp.Machine, t logp.Time) int64 {
	lm := logp.Machine{P: m.P, L: m.L + 1, O: m.O, G: m.G}
	d := lm.D()
	stride := lm.G
	if lm.O > stride {
		stride = lm.O
	}
	best := int64(t) + 1 // root alone: one free operand plus t unit adds
	var rec func(cands []logp.Time, nodes int, contrib int64)
	rec = func(cands []logp.Time, nodes int, contrib int64) {
		if contrib > best {
			best = contrib
		}
		if nodes >= m.P {
			return
		}
		seen := map[logp.Time]bool{}
		for i, c := range cands {
			if c > t-m.O-1 || seen[c] {
				continue // non-positive contribution or symmetric duplicate
			}
			seen[c] = true
			save := cands[i]
			cands[i] = c + stride
			next := append(cands, c+d)
			rec(next, nodes+1, contrib+int64(t-c-m.O))
			cands[i] = save
		}
	}
	rec([]logp.Time{d}, 1, int64(t)+1)
	return best
}

func TestCapacityExhaustiveSmall(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(4, 2, 0, 1),
		logp.MustNew(5, 3, 1, 2),
		logp.MustNew(6, 5, 2, 4),
		logp.MustNew(4, 1, 0, 2),
	}
	for _, m := range machines {
		for tt := logp.Time(0); tt <= 18; tt++ {
			want := exhaustiveCapacity(m, tt)
			got, _ := Capacity(m, tt)
			if got != want {
				t.Fatalf("%v t=%d: Capacity=%d, exhaustive=%d", m, tt, got, want)
			}
		}
	}
}

func TestBroadcastDual(t *testing.T) {
	// Section 5's duality: the plan's communication pattern reversed is an
	// optimal broadcast on the (L+1, o, g) machine. The dual must validate
	// and complete at max label = T - min send time, and each plan send at
	// S must correspond to dual availability at T - S.
	for _, m := range []logp.Machine{logp.MustNew(8, 5, 2, 4), logp.Postal(16, 3)} {
		pl, err := Build(m, 28)
		if err != nil {
			t.Fatal(err)
		}
		dual, err := pl.BroadcastDual()
		if err != nil {
			t.Fatal(err)
		}
		og := map[int]schedule.Origin{0: {Proc: 0, Time: 0}}
		if vs := schedule.ValidateBroadcast(dual, og); len(vs) != 0 {
			t.Fatalf("%v: dual invalid: %v", m, vs[0])
		}
		for ni := range pl.Tree.Nodes {
			if pl.SendAt[ni]+pl.Tree.Nodes[ni].Label != pl.T {
				t.Fatalf("%v: node %d sends at %d but dual availability is %d (T=%d)",
					m, ni, pl.SendAt[ni], pl.Tree.Nodes[ni].Label, pl.T)
			}
		}
	}
}
