package trace

import (
	"fmt"
	"io"
)

// Emitter is a bounded, incremental writer of Chrome trace-event JSON
// ({"traceEvents":[...]}), the streaming counterpart of obs.Tracer's
// in-memory accumulation. Pre-encoded event records are appended to an
// internal buffer that is flushed to the underlying writer whenever it
// exceeds its bound, so a million-processor replay can record millions of
// spans while the emitter holds only the bound's worth of bytes in memory.
//
// Emitter satisfies obs.Sink, so it plugs straight into
// (*obs.Tracer).StreamTo. It is not safe for concurrent use on its own; the
// Tracer serializes calls under its own mutex.
type Emitter struct {
	w       io.Writer
	buf     []byte
	bound   int
	events  int
	started bool
	closed  bool
	err     error
}

// DefaultEmitterBound is the buffer bound used when NewEmitter is given a
// non-positive one: large enough to amortize writes, small enough that an
// engine streaming a huge run holds only a sliver of it in memory.
const DefaultEmitterBound = 256 << 10

// NewEmitter returns an emitter writing to w, flushing whenever the pending
// buffer exceeds bound bytes (<= 0 selects DefaultEmitterBound). Nothing is
// written until the first event arrives or Close is called; Close always
// produces a complete, loadable JSON document, even with zero events.
func NewEmitter(w io.Writer, bound int) *Emitter {
	if bound <= 0 {
		bound = DefaultEmitterBound
	}
	return &Emitter{w: w, buf: make([]byte, 0, bound+4096), bound: bound}
}

// Emit appends one pre-encoded JSON event object to the stream. The bytes
// are copied before Emit returns, so callers may reuse the record buffer.
func (e *Emitter) Emit(rec []byte) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		e.err = fmt.Errorf("trace: Emit after Close")
		return e.err
	}
	if !e.started {
		e.buf = append(e.buf, `{"traceEvents":[`...)
		e.started = true
	} else {
		e.buf = append(e.buf, ',')
	}
	e.buf = append(e.buf, '\n')
	e.buf = append(e.buf, rec...)
	e.events++
	if len(e.buf) > e.bound {
		return e.flush()
	}
	return nil
}

// Events returns the number of events emitted so far.
func (e *Emitter) Events() int { return e.events }

// Err returns the first error the underlying writer reported, if any.
func (e *Emitter) Err() error { return e.err }

func (e *Emitter) flush() error {
	if len(e.buf) == 0 {
		return e.err
	}
	_, err := e.w.Write(e.buf)
	e.buf = e.buf[:0]
	if err != nil && e.err == nil {
		e.err = err
	}
	return e.err
}

// Close terminates the JSON document and flushes everything pending. It does
// not close the underlying writer. Close is idempotent; events emitted after
// Close are an error.
func (e *Emitter) Close() error {
	if e.closed {
		return e.err
	}
	e.closed = true
	if !e.started {
		e.buf = append(e.buf, `{"traceEvents":[`...)
		e.started = true
	}
	e.buf = append(e.buf, "\n]}\n"...)
	return e.flush()
}
