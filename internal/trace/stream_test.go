package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"logpopt/internal/obs"
)

// flushCounter counts Write calls so tests can observe emitter flushing.
type flushCounter struct {
	b      strings.Builder
	writes int
}

func (f *flushCounter) Write(p []byte) (int, error) {
	f.writes++
	return f.b.Write(p)
}

func TestEmitterProducesValidJSON(t *testing.T) {
	var out flushCounter
	em := NewEmitter(&out, 0)
	for i := 0; i < 5; i++ {
		rec := fmt.Sprintf(`{"name":"e%d","ph":"i","ts":%d,"pid":0,"tid":%d}`, i, i*10, i)
		if err := em.Emit([]byte(rec)); err != nil {
			t.Fatalf("Emit %d: %v", i, err)
		}
	}
	if err := em.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if em.Events() != 5 {
		t.Fatalf("Events() = %d, want 5", em.Events())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.b.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("decoded %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[3]["name"] != "e3" {
		t.Fatalf("event order lost: got %v at index 3", doc.TraceEvents[3]["name"])
	}
}

func TestEmitterEmptyClose(t *testing.T) {
	var out strings.Builder
	em := NewEmitter(&out, 0)
	if err := em.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("empty document is not valid JSON: %v\n%q", err, out.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty emitter produced %d events", len(doc.TraceEvents))
	}
	// Idempotent.
	if err := em.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestEmitterBoundedFlushing(t *testing.T) {
	var out flushCounter
	em := NewEmitter(&out, 64) // tiny bound forces many intermediate flushes
	rec := []byte(`{"name":"x","ph":"i","ts":1,"pid":0,"tid":0}`)
	const n = 100
	for i := 0; i < n; i++ {
		if err := em.Emit(rec); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	if out.writes < n/2 {
		t.Fatalf("bound 64 with %d-byte records produced only %d flushes; buffering is unbounded", len(rec), out.writes)
	}
	if err := em.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.b.String()), &doc); err != nil {
		t.Fatalf("flushed output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != n {
		t.Fatalf("decoded %d events, want %d", len(doc.TraceEvents), n)
	}
}

// TestEmitterMatchesTracerWriteJSON streams an obs.Tracer through an Emitter
// and checks the file is byte-identical to what the same events would have
// produced via the in-memory WriteJSON path — the two encoders must never
// drift.
func TestEmitterMatchesTracerWriteJSON(t *testing.T) {
	record := func(tr *obs.Tracer) {
		tr.NameProcess(2, "sim (cycles)")
		tr.NameThread(2, 0, "proc 0")
		tr.Span(2, 0, "send", 0, 2, obs.A("to", 1), obs.A("item", 0))
		tr.Instant(2, 1, "recv", 8)
		tr.Counter(2, "inflight", 8, 1)
		tr.Span(2, 1, `odd "name"`, 9, 3)
	}

	mem := obs.NewTracer()
	record(mem)
	var want strings.Builder
	if err := mem.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	em := NewEmitter(&got, 0)
	st := obs.NewTracer()
	st.StreamTo(em)
	record(st)
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.StreamErr(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed document differs from WriteJSON:\n--- streamed:\n%s\n--- in-memory:\n%s", got.String(), want.String())
	}
}

type failWriter struct{ calls int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	return 0, fmt.Errorf("disk full")
}

func TestEmitterStickyError(t *testing.T) {
	fw := &failWriter{}
	em := NewEmitter(fw, 8)
	rec := []byte(`{"name":"x","ph":"i","ts":1,"pid":0,"tid":0}`)
	if err := em.Emit(rec); err == nil {
		t.Fatal("expected write error")
	}
	for i := 0; i < 10; i++ {
		if err := em.Emit(rec); err == nil {
			t.Fatal("sticky error not returned")
		}
	}
	if fw.calls != 1 {
		t.Fatalf("writer called %d times after first failure, want 1", fw.calls)
	}
	if em.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
}
