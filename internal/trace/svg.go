package trace

import (
	"fmt"
	"strings"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// SVG renders a schedule as a self-contained SVG timeline: one lane per
// processor, colored blocks for send/receive overheads and compute, and
// slanted lines for messages in flight (sender's send start to receiver's
// reception start). Useful for inspecting the paper's schedules at machine
// sizes where the ASCII charts get unwieldy.
//
// Colors: sends #4a7bd0 (blue), receives #4fa36a (green), compute #c9a23a
// (amber), message lines gray.
func SVG(s *schedule.Schedule) string { return SVGHighlight(s, nil) }

// SVGHighlight renders the same timeline with the events whose indices (into
// s.Events) appear in critical outlined in red, and the message flights
// between two highlighted endpoints drawn as solid red lines — the annotated
// critical-path lane `logpsched -explain -render svg` emits.
func SVGHighlight(s *schedule.Schedule, critical map[int]bool) string {
	const (
		cell    = 14 // pixels per cycle
		laneH   = 18
		laneGap = 6
		leftPad = 56
		topPad  = 28
	)
	m := s.M
	end := s.Makespan() + 1
	if end < 1 {
		end = 1
	}
	width := leftPad + int(end)*cell + 20
	height := topPad + m.P*(laneH+laneGap) + 30

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	title := fmt.Sprintf("%s — makespan %d", m.String(), s.Makespan())
	if len(critical) > 0 {
		title += " — critical path in red"
	}
	fmt.Fprintf(&b, `<text x="%d" y="16">%s</text>`+"\n", leftPad, escape(title))

	// A reception is on a highlighted flight when it and its matching send
	// are both on the critical path.
	type mkey struct{ from, to, item int }
	criticalRecv := map[mkey]bool{}
	for i, e := range s.Events {
		if critical[i] && e.Op == schedule.OpRecv {
			criticalRecv[mkey{e.Peer, e.Proc, e.Item}] = true
		}
	}

	laneY := func(p int) int { return topPad + p*(laneH+laneGap) }
	xAt := func(t logp.Time) int { return leftPad + int(t)*cell }

	// Time grid every 5 cycles.
	for t := logp.Time(0); t <= end; t += 5 {
		x := xAt(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eeeeee"/>`+"\n",
			x, topPad-4, x, laneY(m.P-1)+laneH+4)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#888888">%d</text>`+"\n", x-3, height-8, t)
	}
	// Lane labels and baselines.
	for p := 0; p < m.P; p++ {
		y := laneY(p)
		fmt.Fprintf(&b, `<text x="4" y="%d">P%d</text>`+"\n", y+laneH-5, p)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd"/>`+"\n",
			leftPad, y+laneH, xAt(end), y+laneH)
	}

	span := m.O
	if span < 1 {
		span = 1
	}
	block := func(p int, at logp.Time, dur logp.Time, color, title string, hot bool) {
		outline := ""
		if hot {
			outline = ` stroke="#d03a3a" stroke-width="2"`
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"%s><title>%s</title></rect>`+"\n",
			xAt(at), laneY(p), int(dur)*cell-1, laneH, color, outline, escape(title))
	}
	// Message lines first (under the blocks).
	for i, e := range s.Events {
		if e.Op != schedule.OpSend {
			continue
		}
		arrive := e.Time + m.O + m.L
		style := `stroke="#bbbbbb" stroke-dasharray="3,2"`
		if critical[i] && criticalRecv[mkey{e.Proc, e.Peer, e.Item}] {
			style = `stroke="#d03a3a" stroke-width="2"`
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" %s/>`+"\n",
			xAt(e.Time)+cell/2, laneY(e.Proc)+laneH/2,
			xAt(arrive)+cell/2, laneY(e.Peer)+laneH/2, style)
	}
	for i, e := range s.Events {
		switch e.Op {
		case schedule.OpSend:
			block(e.Proc, e.Time, span, "#4a7bd0",
				fmt.Sprintf("P%d sends item %d to P%d at %d", e.Proc, e.Item, e.Peer, e.Time), critical[i])
		case schedule.OpRecv:
			block(e.Proc, e.Time, span, "#4fa36a",
				fmt.Sprintf("P%d receives item %d from P%d at %d", e.Proc, e.Item, e.Peer, e.Time), critical[i])
		case schedule.OpCompute:
			block(e.Proc, e.Time, e.Dur, "#c9a23a",
				fmt.Sprintf("P%d computes (tag %d) at %d for %d", e.Proc, e.Item, e.Time, e.Dur), critical[i])
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
