package trace

import (
	"encoding/xml"
	"os"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
)

// TestSVGGolden pins the Figure 1 broadcast rendering byte-for-byte against
// testdata/broadcast_fig1.svg. The renderer is pure formatting over a
// deterministic schedule, so any diff is an intentional visual change —
// regenerate the golden by writing SVG(BroadcastSchedule(ProfilePaperFig1,
// 0)) over the file and eyeballing it in a browser.
func TestSVGGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/broadcast_fig1.svg")
	if err != nil {
		t.Fatal(err)
	}
	got := SVG(core.BroadcastSchedule(logp.ProfilePaperFig1, 0))
	if got != string(want) {
		t.Fatalf("SVG output drifted from golden (%d bytes vs %d); "+
			"regenerate testdata/broadcast_fig1.svg if the change is intentional",
			len(got), len(want))
	}
}

// TestSVGWellFormedXML feeds renders through an XML parser: every dynamic
// string (machine description, block titles) passes through escape, so the
// output must always be well-formed. A missed escape of < or & breaks this
// immediately.
func TestSVGWellFormedXML(t *testing.T) {
	for _, m := range []logp.Machine{logp.ProfilePaperFig1, logp.Postal(9, 3)} {
		svg := SVG(core.BroadcastSchedule(m, 0))
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%v: SVG is not well-formed XML: %v", m, err)
			}
		}
	}
}
