// Package trace renders schedules as the paper's figures do: per-processor
// activity charts over time (Figure 1 right, Figure 6 left), reception
// tables mapping (processor, time) to the item received (Figures 2, 4, 5),
// and indented tree outlines (Figures 1, 2, 6). All output is plain text so
// the bench harness can diff and embed it.
package trace

import (
	"fmt"
	"strings"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Gantt renders one line per processor; each column is one cycle. Legend:
// 'S' send overhead start, 's' send overhead continuation, 'R'/'r' receive,
// '+' compute, '.' idle. In the postal model (o = 0) sends and receives
// occupy single columns ('S'/'R'); a simultaneous send and receive renders
// as 'X'.
func Gantt(s *schedule.Schedule) string {
	m := s.M
	end := s.Makespan() + 1
	if end > 2000 {
		end = 2000 // keep renders bounded
	}
	grid := make([][]byte, m.P)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", int(end)))
	}
	mark := func(p int, at logp.Time, dur logp.Time, first, rest byte) {
		if p < 0 || p >= m.P {
			return
		}
		for c := logp.Time(0); c < dur && at+c < end; c++ {
			if at+c < 0 {
				continue
			}
			ch := rest
			if c == 0 {
				ch = first
			}
			cell := &grid[p][at+c]
			switch {
			case *cell == '.':
				*cell = ch
			case (*cell == 'S' && ch == 'R') || (*cell == 'R' && ch == 'S'):
				*cell = 'X'
			default:
				*cell = '!'
			}
		}
	}
	for _, e := range s.Events {
		switch e.Op {
		case schedule.OpSend:
			mark(e.Proc, e.Time, max1(m.O), 'S', 's')
		case schedule.OpRecv:
			mark(e.Proc, e.Time, max1(m.O), 'R', 'r')
		case schedule.OpCompute:
			mark(e.Proc, e.Time, e.Dur, '+', '+')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time  %s\n", ruler(int(end)))
	for p := 0; p < m.P; p++ {
		fmt.Fprintf(&b, "P%-4d %s\n", p, grid[p])
	}
	return b.String()
}

func max1(o logp.Time) logp.Time {
	if o < 1 {
		return 1
	}
	return o
}

// ruler returns a 0-based decade ruler like "0         1         2".
func ruler(width int) string {
	rb := []byte(strings.Repeat(" ", width))
	for c := 0; c < width; c += 10 {
		digits := fmt.Sprintf("%d", c)
		for i := 0; i < len(digits) && c+i < width; i++ {
			rb[c+i] = digits[i]
		}
	}
	return string(rb)
}

// ReceptionTable renders, for each processor and each time step, the item
// received at that step (1-based, as in the paper's figures), or '.' if
// none. Only receive events are shown.
func ReceptionTable(s *schedule.Schedule) string {
	m := s.M
	end := s.LastRecv() + 1
	if end > 2000 {
		end = 2000
	}
	width := len(fmt.Sprintf("%d", maxItem(s)+1))
	if width < 2 {
		width = 2
	}
	empty := strings.Repeat(".", 1) + strings.Repeat(" ", width-1)
	rows := make([][]string, m.P)
	for p := range rows {
		rows[p] = make([]string, end)
		for c := range rows[p] {
			rows[p][c] = empty
		}
	}
	for _, e := range s.Events {
		if e.Op != schedule.OpRecv || e.Time < 0 || e.Time >= end {
			continue
		}
		rows[e.Proc][e.Time] = fmt.Sprintf("%-*d", width, e.Item+1)
	}
	var b strings.Builder
	b.WriteString("proc\\time ")
	for c := logp.Time(0); c < end; c++ {
		fmt.Fprintf(&b, "%-*d", width+1, c)
	}
	b.WriteByte('\n')
	for p := 0; p < m.P; p++ {
		fmt.Fprintf(&b, "P%-8d ", p)
		for c := logp.Time(0); c < end; c++ {
			b.WriteString(rows[p][c])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func maxItem(s *schedule.Schedule) int {
	mx := 0
	for _, e := range s.Events {
		if e.Op != schedule.OpCompute && e.Item > mx {
			mx = e.Item
		}
	}
	return mx
}

// BlockTable renders the reception table restricted to the given processors
// (e.g. one block of a block-cyclic schedule), reproducing Figure 4's view.
func BlockTable(s *schedule.Schedule, procs []int) string {
	end := s.LastRecv() + 1
	if end > 2000 {
		end = 2000
	}
	width := len(fmt.Sprintf("%d", maxItem(s)+1))
	if width < 2 {
		width = 2
	}
	var b strings.Builder
	b.WriteString("proc\\time ")
	for c := logp.Time(0); c < end; c++ {
		fmt.Fprintf(&b, "%-*d", width+1, c)
	}
	b.WriteByte('\n')
	for _, p := range procs {
		row := make([]string, end)
		for c := range row {
			row[c] = "." + strings.Repeat(" ", width-1)
		}
		for _, e := range s.Events {
			if e.Op == schedule.OpRecv && e.Proc == p && e.Time >= 0 && e.Time < end {
				row[e.Time] = fmt.Sprintf("%-*d", width, e.Item+1)
			}
		}
		fmt.Fprintf(&b, "P%-8d ", p)
		for c := logp.Time(0); c < end; c++ {
			b.WriteString(row[c])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
