package trace

import (
	"strings"
	"testing"

	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/summation"
)

func TestGanttFigure1(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	g := Gantt(s)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 9 { // ruler + 8 processors
		t.Fatalf("gantt has %d lines, want 9:\n%s", len(lines), g)
	}
	// P0 sends 4 messages starting at 0, 4, 8, 12 with o=2.
	p0 := lines[1]
	if !strings.Contains(p0, "Ss..Ss..Ss..Ss") {
		t.Fatalf("P0 row unexpected: %q", p0)
	}
	if strings.Contains(g, "!") {
		t.Fatalf("gantt shows conflicting cells:\n%s", g)
	}
}

func TestGanttPostalFullDuplex(t *testing.T) {
	// A postal schedule where a proc sends and receives at the same step
	// must render 'X', not '!'.
	m := logp.Postal(3, 2)
	s := core.BroadcastSchedule(m, 0)
	_ = s
	// Build explicitly: 0->1 at 0 (recv at 2), 1->2 at 2.
	s2 := core.BroadcastSchedule(m, 0)
	g := Gantt(s2)
	if strings.Contains(g, "!") {
		t.Fatalf("unexpected conflict cells:\n%s", g)
	}
}

func TestGanttSummationFigure6(t *testing.T) {
	m := logp.ProfilePaperFig6
	pl, err := summation.Build(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	g := Gantt(pl.Schedule())
	if strings.Contains(g, "!") {
		t.Fatalf("summation gantt has conflicts:\n%s", g)
	}
	// P0 (the root) computes during its final cycles up to t=28.
	if !strings.Contains(g, "+") {
		t.Fatal("no compute cells rendered")
	}
}

func TestReceptionTableFigure2(t *testing.T) {
	// Figure 2's continuous broadcast schedule: from step 10 onwards every
	// non-source processor receives an item every step.
	_, s, err := continuous.SolveAndSchedule(3, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	tbl := ReceptionTable(s)
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != 11 { // header + 10 processors
		t.Fatalf("table has %d lines, want 11", len(lines))
	}
	// The source row must be all dots.
	if strings.ContainsAny(strings.TrimPrefix(lines[1], "P0"), "0123456789") {
		t.Fatalf("source row shows receptions: %q", lines[1])
	}
}

func TestBlockTable(t *testing.T) {
	inst, s, err := continuous.SolveAndSchedule(3, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Assign()
	if err != nil {
		t.Fatal(err)
	}
	tbl := BlockTable(s, a.BlockProcs[len(a.BlockProcs)-1])
	if tbl == "" || !strings.Contains(tbl, "P") {
		t.Fatalf("empty block table: %q", tbl)
	}
}

func TestRuler(t *testing.T) {
	r := ruler(25)
	if len(r) != 25 || !strings.HasPrefix(r, "0") || !strings.Contains(r, "10") || !strings.Contains(r, "20") {
		t.Fatalf("ruler = %q", r)
	}
}

func TestSVG(t *testing.T) {
	m := logp.ProfilePaperFig1
	s := core.BroadcastSchedule(m, 0)
	svg := SVG(s)
	for _, w := range []string{"<svg", "</svg>", "P7", "#4a7bd0", "#4fa36a", "makespan 24"} {
		if !strings.Contains(svg, w) {
			t.Fatalf("SVG missing %q", w)
		}
	}
	// 7 sends + 7 recvs = 14 blocks; 7 message lines + grid lines.
	if got := strings.Count(svg, "<rect"); got < 15 { // background + 14
		t.Fatalf("SVG has %d rects", got)
	}
	// Summation SVG includes compute blocks.
	pl, err := summation.Build(logp.ProfilePaperFig6, 28)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(SVG(pl.Schedule()), "#c9a23a") {
		t.Fatal("summation SVG missing compute blocks")
	}
}

func TestSVGEscapesTitles(t *testing.T) {
	if escape(`a<b>&"c`) != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape wrong: %q", escape(`a<b>&"c`))
	}
}
