// Package logpopt is a from-scratch Go implementation of
//
//	R. M. Karp, A. Sahay, E. E. Santos, K. E. Schauser.
//	"Optimal Broadcast and Summation in the LogP Model." SPAA 1993.
//
// It provides optimal communication schedules for single-item broadcast,
// k-item broadcast, continuous broadcast, all-to-all broadcast, all-to-all
// personalized communication, combining broadcast (all-reduce) and
// summation, on a LogP machine with parameters (P, L, o, g), plus the
// classic baselines (linear, flat, binary, binomial trees), a deterministic
// discrete-event LogP simulator, a goroutine-based message-passing runtime,
// an independent schedule validator, and text renderers reproducing the
// paper's figures.
//
// The package is a facade: the implementation lives under internal/, and
// the most used types and functions are re-exported here so that library
// users (and the examples under examples/) program against one import.
//
// Quick start:
//
//	m := logpopt.Machine{P: 8, L: 6, O: 2, G: 4} // Figure 1's machine
//	tree := logpopt.OptimalBroadcastTree(m, m.P)
//	fmt.Println(logpopt.BroadcastTime(m, m.P)) // 24
//	sched := logpopt.BroadcastSchedule(m, 0)
//	fmt.Println(logpopt.Gantt(sched))
//	_ = tree
package logpopt

import (
	"logpopt/internal/alltoall"
	"logpopt/internal/baseline"
	"logpopt/internal/combine"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
	"logpopt/internal/summation"
	"logpopt/internal/trace"
)

// Machine model (internal/logp).
type (
	// Machine holds the LogP parameters P, L, o, g.
	Machine = logp.Machine
	// Time is a point or duration on the machine's cycle clock.
	Time = logp.Time
)

// Machine constructors and profiles.
var (
	// NewMachine validates and returns a machine.
	NewMachine = logp.New
	// MustMachine is NewMachine, panicking on invalid parameters.
	MustMachine = logp.MustNew
	// Postal returns the postal-model machine (o=0, g=1) of Section 3.
	Postal = logp.Postal

	// ProfileCM5 approximates a CM-5 node (the paper era's machine).
	ProfileCM5 = logp.ProfileCM5
	// ProfilePaperFig1 is Figure 1's machine: P=8, L=6, o=2, g=4.
	ProfilePaperFig1 = logp.ProfilePaperFig1
	// ProfilePaperFig6 is Figure 6's machine: P=8, L=5, o=2, g=4.
	ProfilePaperFig6 = logp.ProfilePaperFig6
	// ProfileEthernetCluster approximates a workstation cluster.
	ProfileEthernetCluster = logp.ProfileEthernetCluster
	// ProfileLowLatency approximates a tightly coupled MPP.
	ProfileLowLatency = logp.ProfileLowLatency
)

// Schedules and validation (internal/schedule).
type (
	// Schedule is a timed list of send/recv/compute events.
	Schedule = schedule.Schedule
	// Event is one timed action at one processor.
	Event = schedule.Event
	// Violation describes one broken LogP constraint.
	Violation = schedule.Violation
	// Origin records where and when an item enters the system.
	Origin = schedule.Origin
)

var (
	// Validate checks a schedule against the LogP rules (exact receptions).
	Validate = schedule.Validate
	// ValidateDeferred allows buffered receptions (Section 3.5's model).
	ValidateDeferred = schedule.ValidateDeferred
	// ValidateBroadcastSchedule additionally checks availability and
	// completeness for the given item origins.
	ValidateBroadcastSchedule = schedule.ValidateBroadcast
	// ReadScheduleJSON deserializes a schedule written with
	// Schedule.WriteJSON.
	ReadScheduleJSON = schedule.ReadJSON
)

// Single-item broadcast (Section 2; internal/core).
type (
	// Tree is a rooted, ordered, labeled broadcast tree.
	Tree = core.Tree
	// TreeNode is one node of a broadcast tree.
	TreeNode = core.Node
	// Seq is the generalized Fibonacci sequence {f_i} of Definition 2.5.
	Seq = core.Seq
)

var (
	// NewSeq returns the {f_i} sequence for a postal latency L.
	NewSeq = core.NewSeq
	// OptimalBroadcastTree returns ß(P), the optimal broadcast tree
	// (Theorem 2.1).
	OptimalBroadcastTree = core.OptimalTree
	// BroadcastTime returns B(P; L,o,g), the optimal broadcast time.
	BroadcastTime = core.B
	// Reachable returns P(t; L,o,g), the maximum number of processors
	// reachable in t steps (Theorem 2.2).
	Reachable = core.Pt
	// BroadcastSchedule expands the optimal tree into a schedule.
	BroadcastSchedule = core.BroadcastSchedule
	// TreeSchedule expands any broadcast tree with an explicit processor
	// assignment and time offset.
	TreeSchedule = core.TreeSchedule
	// BroadcastOrigins returns the origin map of a single broadcast from
	// processor 0.
	BroadcastOrigins = core.Origins
)

// Search-free logarithmic-time construction (internal/logtime; DESIGN.md
// §5b). Interchangeable with the heap-search constructors above — trees are
// node-for-node identical — but built by counting label points: B(P) without
// any tree, and any single processor's entry in O(log P).
type (
	// LogtimeBuilder holds the counting tables of the universal optimal
	// broadcast tree for one machine shape, shared across every P queried.
	LogtimeBuilder = logtime.Builder
	// LogtimeNodeInfo describes one node of ß(P) by rank: label, parent,
	// send time, and children, answerable without materializing the tree.
	LogtimeNodeInfo = logtime.NodeInfo
)

var (
	// LogtimeBroadcastTime is BroadcastTime computed from counting tables
	// with no tree construction — ~10 µs cold at P = 10⁵ vs ~54 ms for the
	// heap search (BENCH_3.json).
	LogtimeBroadcastTime = logtime.B
	// LogtimeNode answers a per-rank query against ß(P) in O(log P).
	LogtimeNode = logtime.Node
	// LogtimeBroadcastTree is OptimalBroadcastTree via the counting
	// construction; the result is node-for-node identical.
	LogtimeBroadcastTree = logtime.Tree
	// LogtimeBroadcastSchedule is BroadcastSchedule via the counting
	// construction.
	LogtimeBroadcastSchedule = logtime.BroadcastSchedule
	// SelectConstructor resolves "auto", "search", or "logtime" to a tree
	// constructor; auto switches to logtime at P >= 512.
	SelectConstructor = logtime.Select
)

// k-item broadcast (Sections 3, 3.4, 3.5; internal/kitem).
type (
	// KItemBounds collects the bounds of Theorems 3.1 and 3.6 and the
	// single-sending bound.
	KItemBounds = kitem.Bounds
	// KItemResult reports a greedy k-item run.
	KItemResult = kitem.Result
	// BlockDigraph is the block transmission digraph of Figure 3.
	BlockDigraph = kitem.BlockDigraph
)

// Reception disciplines for the greedy k-item scheduler.
const (
	// KItemStrict is the plain postal model.
	KItemStrict = kitem.Strict
	// KItemBuffered is the modified model of Theorem 3.8.
	KItemBuffered = kitem.Buffered
)

var (
	// KItemBoundsFor computes the k-item bounds for (L, P, k).
	KItemBoundsFor = kitem.BoundsFor
	// KItemOptimal builds the optimal single-sending k-item schedule for
	// P-1 = P(t) via the continuous-broadcast construction.
	KItemOptimal = kitem.ViaContinuous
	// KItemOptimalGeneral builds the exact single-sending-optimal k-item
	// schedule for arbitrary P via the general block-cyclic construction
	// (beyond the paper's P(t) grid; can fail for L=2 near capacity).
	KItemOptimalGeneral = kitem.OptimalGeneral
	// KItemStaggered builds a buffered staggered-tree k-item schedule
	// (Theorem 3.8's model): when it succeeds it meets the single-sending
	// bound exactly with a small input buffer.
	KItemStaggered = kitem.Staggered
	// KItemGreedy builds a single-sending k-item schedule for any P and k.
	KItemGreedy = kitem.Greedy
	// KItemSearchOptimal finds the true optimum of a tiny instance by
	// exhaustive branch-and-bound (multi-sending allowed).
	KItemSearchOptimal = kitem.SearchOptimal
	// KItemOrigins returns the origin map for a k-item broadcast.
	KItemOrigins = kitem.Origins
	// DeriveBlockDigraph derives Figure 3's digraph from a block-cyclic
	// assignment.
	DeriveBlockDigraph = kitem.DeriveBlockDigraph
)

// Continuous broadcast (Sections 3.1-3.3; internal/continuous).
type (
	// ContinuousInstance is one continuous-broadcast scheduling problem.
	ContinuousInstance = continuous.Instance
	// ContinuousAssignment maps tree nodes to processors per item.
	ContinuousAssignment = continuous.Assignment
)

var (
	// NewContinuous builds the instance for latency l and horizon t
	// (P-1 = P(t)).
	NewContinuous = continuous.NewInstance
	// ContinuousSolveAndSchedule solves an instance and emits a k-item
	// schedule with per-item delay exactly L + B(P-1).
	ContinuousSolveAndSchedule = continuous.SolveAndSchedule
	// ContinuousSolveGeneral is SolveAndSchedule for an arbitrary number of
	// non-source processors (beyond the paper's P(t) grid).
	ContinuousSolveGeneral = continuous.SolveGeneralAndSchedule
	// NewContinuousGeneral builds the general instance without solving it.
	NewContinuousGeneral = continuous.NewInstanceGeneral
	// ContinuousL2 builds the Theorem 3.5 construction for L=2 (delay
	// L + B(P-1) + 1).
	ContinuousL2 = continuous.SolveL2
	// ContinuousOrigins returns the origin map for a k-item continuous
	// broadcast.
	ContinuousOrigins = continuous.Origins
	// VerifyContinuousDelay checks per-item delays in a schedule.
	VerifyContinuousDelay = continuous.VerifyDelay
)

// All-to-all broadcast and personalized communication (Section 4.1).
var (
	// AllToAllSchedule returns the optimal k-item all-to-all broadcast.
	AllToAllSchedule = alltoall.Schedule
	// AllToAllLowerBound returns L + 2o + (k(P-1)-1)g.
	AllToAllLowerBound = alltoall.LowerBound
	// AllToAllOrigins returns the origin map for a k-item all-to-all.
	AllToAllOrigins = alltoall.Origins
	// PersonalizedSchedule returns optimal all-to-all personalized
	// communication.
	PersonalizedSchedule = alltoall.Personalized
	// ScatterSchedule returns the optimal one-to-all personalized schedule.
	ScatterSchedule = alltoall.Scatter
	// GatherSchedule returns the optimal all-to-one personalized schedule.
	GatherSchedule = alltoall.Gather
	// ScatterLowerBound returns L + 2o + (P-2)g.
	ScatterLowerBound = alltoall.ScatterLowerBound
	// AllToAllWithPermutations schedules an arbitrary legal permutation
	// family.
	AllToAllWithPermutations = alltoall.ScheduleWithPermutations
)

// Combining broadcast and reduction (Section 4.2; internal/combine).
type (
	// CombineSegment is the cyclic index interval a processor's value covers.
	CombineSegment = combine.Segment
)

var (
	// CombineTimeFor returns the optimal combining-broadcast time for P
	// processors.
	CombineTimeFor = combine.TimeFor
	// CombineExact reports whether P = P(T) exactly.
	CombineExact = combine.Exact
	// CombineSchedule returns Theorem 4.1's communication schedule.
	CombineSchedule = combine.Schedule
	// CombineSegments runs the algorithm symbolically and verifies the
	// invariant of Theorem 4.1.
	CombineSegments = combine.RunSegments
	// ReduceSchedule returns the reversed-tree all-to-one reduction.
	ReduceSchedule = combine.ReduceSchedule
	// ScanRanks returns the preorder ranking used by the two-sweep scan.
	ScanRanks = combine.ScanRanks
	// ScanSchedule returns the two-sweep prefix-scan schedule (extension;
	// completes at 2 B(P)).
	ScanSchedule = combine.ScanSchedule
)

// ScanRun executes the two-sweep inclusive prefix scan (extension beyond the
// paper): res[i] is the prefix over preorder ranks <= rank[i], combined in
// rank order, finishing at 2 B(P).
func ScanRun[V any](m Machine, vals []V, op func(V, V) V) ([]V, Time, error) {
	return combine.ScanRun(m, vals, op)
}

// CombineRun executes the combining broadcast with real values; every
// processor ends with the reduction of all P values (for commutative op).
func CombineRun[V any](l int, T int, vals []V, op func(V, V) V) ([]V, error) {
	return combine.Run(l, T, vals, op)
}

// ReduceRun executes the reversed-tree reduction with real values.
func ReduceRun[V any](m Machine, vals []V, op func(V, V) V) (V, Time, error) {
	return combine.ReduceRun(m, vals, op)
}

// Summation (Section 5; internal/summation).
type (
	// SummationPlan is a complete optimal summation schedule.
	SummationPlan = summation.Plan
	// SummationFoldOp is one accumulator update in a plan's timeline.
	SummationFoldOp = summation.FoldOp
)

// Kinds of accumulator updates in a summation plan.
const (
	// SummationOpLocal folds the processor's next local operand.
	SummationOpLocal = summation.OpLocal
	// SummationOpRecvFold folds a received partial sum.
	SummationOpRecvFold = summation.OpRecvFold
)

var (
	// SummationCapacity returns n(t), the operand capacity of Lemma 5.1.
	SummationCapacity = summation.Capacity
	// SummationTimeFor returns the optimal time to sum n operands.
	SummationTimeFor = summation.TimeFor
	// BuildSummation constructs the optimal summation plan for a deadline.
	BuildSummation = summation.Build
)

// ExecuteSummation runs a summation plan on concrete operands. With the
// plan's in-order operand numbering the result equals the left-to-right
// fold even for non-commutative operations.
func ExecuteSummation[V any](pl *SummationPlan, operands []V, op func(V, V) V) (V, error) {
	return summation.Execute(pl, operands, op)
}

// Baselines (internal/baseline).
var (
	// LinearTree is the chain broadcast baseline.
	LinearTree = baseline.LinearTree
	// FlatTree is the source-sends-all baseline.
	FlatTree = baseline.FlatTree
	// BinaryTree is the balanced binary tree baseline.
	BinaryTree = baseline.BinaryTree
	// BinomialTree is the classical binomial tree baseline.
	BinomialTree = baseline.BinomialTree
	// BaselineTreeTime returns a baseline tree's completion time.
	BaselineTreeTime = baseline.TreeTime
	// SequentialPipelined is the naive k-item broadcast baseline.
	SequentialPipelined = baseline.SequentialPipelined
	// ReduceThenBroadcastTime is the naive combining baseline's time (2B).
	ReduceThenBroadcastTime = baseline.ReduceThenBroadcastTime
)

// Simulation (internal/sim) and concurrent runtime (internal/runtime).
type (
	// Engine is the discrete-event LogP machine simulator.
	Engine = sim.Engine
	// SimReport summarizes a simulation run.
	SimReport = sim.Report
	// Runtime executes handlers on one goroutine per processor in
	// barrier-synchronized virtual time.
	Runtime = runtime.Runtime
	// Proc is the per-processor handle passed to runtime handlers.
	Proc = runtime.Proc
	// Handler is a per-step processor program.
	Handler = runtime.Handler
	// Message is a payload-carrying runtime message.
	Message = runtime.Message
)

// Simulator and runtime constructors.
var (
	// NewEngine returns a fresh simulator.
	NewEngine = sim.New
	// SimRun replays a schedule's sends on the simulator.
	SimRun = sim.Run
	// NewRuntime returns a goroutine-per-processor runtime.
	NewRuntime = runtime.New
	// ScheduleHandlers converts a schedule into replay handlers.
	ScheduleHandlers = runtime.ScheduleHandlers
	// RuntimeHorizon bounds a schedule replay's virtual time.
	RuntimeHorizon = runtime.Horizon
)

// Reception disciplines for the simulator and runtime.
const (
	// SimStrict receives arrivals immediately.
	SimStrict = sim.Strict
	// SimBuffered queues arrivals (Section 3.5's modified model).
	SimBuffered = sim.Buffered
	// RTStrict is the runtime's strict mode.
	RTStrict = runtime.Strict
	// RTBuffered is the runtime's buffered mode.
	RTBuffered = runtime.Buffered
)

// Rendering (internal/trace).
var (
	// Gantt renders a per-processor activity chart (Figures 1 and 6).
	Gantt = trace.Gantt
	// ReceptionTable renders (processor, time) -> item (Figures 2 and 5).
	ReceptionTable = trace.ReceptionTable
	// BlockTable renders the reception table of selected processors
	// (Figure 4).
	BlockTable = trace.BlockTable
	// TimelineSVG renders a schedule as a self-contained SVG timeline.
	TimelineSVG = trace.SVG
)
