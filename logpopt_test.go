package logpopt_test

import (
	"strings"
	"testing"

	logpopt "logpopt"
)

// The facade tests exercise the public API end to end, the way a library
// user would.

func TestQuickstartFlow(t *testing.T) {
	m := logpopt.ProfilePaperFig1
	if got := logpopt.BroadcastTime(m, m.P); got != 24 {
		t.Fatalf("B(8) = %d, want 24", got)
	}
	tr := logpopt.OptimalBroadcastTree(m, m.P)
	if tr.P() != 8 || tr.MaxLabel() != 24 {
		t.Fatalf("tree P=%d max=%d", tr.P(), tr.MaxLabel())
	}
	s := logpopt.BroadcastSchedule(m, 0)
	if vs := logpopt.ValidateBroadcastSchedule(s, logpopt.BroadcastOrigins(0)); len(vs) != 0 {
		t.Fatal(vs[0])
	}
	if g := logpopt.Gantt(s); !strings.Contains(g, "P7") {
		t.Fatal("gantt missing processor rows")
	}
}

func TestPublicKItem(t *testing.T) {
	b := logpopt.KItemBoundsFor(3, 10, 8)
	if b.SingleSending != 17 {
		t.Fatalf("single-sending bound %d, want 17", b.SingleSending)
	}
	_, s, err := logpopt.KItemOptimal(3, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.LastRecv() != 17 {
		t.Fatalf("optimal k-item finishes at %d", s.LastRecv())
	}
	res, err := logpopt.KItemGreedy(3, 10, 8, logpopt.KItemStrict)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Finish) < b.Lower {
		t.Fatalf("greedy %d beats lower bound %d", res.Finish, b.Lower)
	}
}

func TestPublicCombineAndReduce(t *testing.T) {
	vals := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	got, err := logpopt.CombineRun(3, 7, vals, func(x, y string) string { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 || len(got[0]) != 9 {
		t.Fatalf("combine result %v", got)
	}
	m := logpopt.Postal(9, 3)
	sum, T, err := logpopt.ReduceRun(m, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, func(a, b int) int { return a + b })
	if err != nil || sum != 45 || T != 7 {
		t.Fatalf("reduce = %d at %d (%v)", sum, T, err)
	}
}

func TestPublicSummation(t *testing.T) {
	m := logpopt.ProfilePaperFig6
	n, _ := logpopt.SummationCapacity(m, 28)
	if n != 79 {
		t.Fatalf("n(28) = %d, want 79", n)
	}
	if got := logpopt.SummationTimeFor(m, 79); got != 28 {
		t.Fatalf("t(79) = %d, want 28", got)
	}
	pl, err := logpopt.BuildSummation(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]int, pl.N)
	want := 0
	for i := range ops {
		ops[i] = i
		want += i
	}
	got, err := logpopt.ExecuteSummation(pl, ops, func(a, b int) int { return a + b })
	if err != nil || got != want {
		t.Fatalf("sum = %d, want %d (%v)", got, want, err)
	}
}

func TestPublicAllToAll(t *testing.T) {
	m := logpopt.Postal(9, 3)
	s := logpopt.AllToAllSchedule(m, 1)
	if got, want := s.LastRecv(), logpopt.AllToAllLowerBound(m, 1); got != want {
		t.Fatalf("all-to-all %d, want %d", got, want)
	}
}

func TestPublicContinuous(t *testing.T) {
	inst, s, err := logpopt.ContinuousSolveAndSchedule(3, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := logpopt.VerifyContinuousDelay(s, 12, inst.Delay())
	if err != nil || worst != 10 {
		t.Fatalf("delay %d (%v), want 10", worst, err)
	}
	l2, err := logpopt.ContinuousL2(6)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Delay() != 9 {
		t.Fatalf("L=2 delay %d, want 9", l2.Delay())
	}
}

func TestPublicBaselines(t *testing.T) {
	m := logpopt.Postal(64, 4)
	opt := logpopt.BroadcastTime(m, 64)
	if logpopt.BaselineTreeTime(logpopt.BinomialTree(m, 64)) <= opt {
		t.Fatal("binomial tree should be slower in the postal model")
	}
	if logpopt.ReduceThenBroadcastTime(m, 64) != 2*opt {
		t.Fatal("reduce+broadcast should cost 2B")
	}
}

func TestPublicRuntime(t *testing.T) {
	m := logpopt.Postal(4, 2)
	s := logpopt.BroadcastSchedule(m, 0)
	rt, err := logpopt.NewRuntime(m, logpopt.RTStrict, logpopt.ScheduleHandlers(s))
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(logpopt.RuntimeHorizon(s))
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatal(vs)
	}
	if got, want := rt.Trace().LastRecv(), logpopt.BroadcastTime(m, 4); got != want {
		t.Fatalf("runtime finished at %d, want %d", got, want)
	}
}

func TestPublicScatterGatherScan(t *testing.T) {
	m := logpopt.Postal(9, 3)
	if got, want := logpopt.ScatterSchedule(m).LastRecv(), logpopt.ScatterLowerBound(m); got != want {
		t.Fatalf("scatter %d, want %d", got, want)
	}
	if got, want := logpopt.GatherSchedule(m).LastRecv(), logpopt.ScatterLowerBound(m); got != want {
		t.Fatalf("gather %d, want %d", got, want)
	}
	res, T, err := logpopt.ScanRun(m, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, func(a, b int) int { return a + b })
	if err != nil || T != 2*logpopt.BroadcastTime(m, 9) {
		t.Fatalf("scan T=%d err=%v", T, err)
	}
	if res[0] != 1 { // root has rank 0
		t.Fatalf("scan root = %d", res[0])
	}
	if len(logpopt.ScanRanks(m, 9)) != 9 {
		t.Fatal("scan ranks wrong length")
	}
}

func TestPublicKItemGeneralAndStaggered(t *testing.T) {
	_, s, err := logpopt.KItemOptimalGeneral(3, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := logpopt.KItemBoundsFor(3, 12, 5).SingleSending
	if got := int64(s.LastRecv()); got != want {
		t.Fatalf("general optimal %d, want %d", got, want)
	}
	res, err := logpopt.KItemStaggered(3, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Finish) != want {
		t.Fatalf("staggered %d, want %d", res.Finish, want)
	}
	best, done, err := logpopt.KItemSearchOptimal(2, 3, 2, 0)
	if err != nil || !done || best != 4 {
		t.Fatalf("search: %d %v %v", best, done, err)
	}
}

func TestPublicJSONRoundTrip(t *testing.T) {
	m := logpopt.Postal(5, 2)
	s := logpopt.BroadcastSchedule(m, 0)
	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := logpopt.ReadScheduleJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LastRecv() != s.LastRecv() {
		t.Fatal("JSON round trip changed the schedule")
	}
}

func TestPublicRenderers(t *testing.T) {
	m := logpopt.Postal(5, 2)
	s := logpopt.BroadcastSchedule(m, 0)
	if !strings.Contains(logpopt.TimelineSVG(s), "<svg") {
		t.Fatal("SVG renderer broken")
	}
	tree := logpopt.OptimalBroadcastTree(m, 5)
	if !strings.Contains(tree.DOT("x"), "digraph") {
		t.Fatal("DOT renderer broken")
	}
	if logpopt.NewSeq(2).Growth() < 1.6 {
		t.Fatal("growth rate broken")
	}
}
